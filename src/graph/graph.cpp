#include "graph/graph.h"

#include <cassert>
#include <stdexcept>

namespace tb {

int Graph::add_edge(int u, int v, double cap) {
  if (u == v) throw std::invalid_argument("Graph::add_edge: self loop");
  if (u < 0 || v < 0 || u >= num_nodes_ || v >= num_nodes_) {
    throw std::out_of_range("Graph::add_edge: node id out of range");
  }
  if (cap <= 0) throw std::invalid_argument("Graph::add_edge: cap <= 0");
  edge_u_.push_back(u);
  edge_v_.push_back(v);
  cap_.push_back(cap);
  finalized_ = false;
  return num_edges() - 1;
}

void Graph::finalize() {
  if (finalized_) return;
  offset_.assign(static_cast<std::size_t>(num_nodes_) + 1, 0);
  for (int e = 0; e < num_edges(); ++e) {
    ++offset_[static_cast<std::size_t>(edge_u_[static_cast<std::size_t>(e)]) + 1];
    ++offset_[static_cast<std::size_t>(edge_v_[static_cast<std::size_t>(e)]) + 1];
  }
  for (std::size_t v = 0; v < offset_.size() - 1; ++v) {
    offset_[v + 1] += offset_[v];
  }
  adj_.assign(static_cast<std::size_t>(num_arcs()), 0);
  std::vector<int> cursor(offset_.begin(), offset_.end() - 1);
  for (int e = 0; e < num_edges(); ++e) {
    const int u = edge_u_[static_cast<std::size_t>(e)];
    const int v = edge_v_[static_cast<std::size_t>(e)];
    adj_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)]++)] = 2 * e;
    adj_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)]++)] = 2 * e + 1;
  }
  finalized_ = true;
}

double Graph::total_capacity() const {
  double sum = 0.0;
  for (const double c : cap_) sum += 2.0 * c;
  return sum;
}

std::vector<int> Graph::degree_sequence() const {
  assert(finalized_);
  std::vector<int> deg(static_cast<std::size_t>(num_nodes_));
  for (int v = 0; v < num_nodes_; ++v) deg[static_cast<std::size_t>(v)] = degree(v);
  return deg;
}

bool Graph::has_edge(int u, int v) const {
  assert(finalized_);
  for (const int a : out_arcs(u)) {
    if (arc_to(a) == v) return true;
  }
  return false;
}

std::vector<std::pair<int, int>> Graph::edge_list() const {
  std::vector<std::pair<int, int>> edges;
  edges.reserve(static_cast<std::size_t>(num_edges()));
  for (int e = 0; e < num_edges(); ++e) {
    edges.emplace_back(edge_u(e), edge_v(e));
  }
  return edges;
}

}  // namespace tb
