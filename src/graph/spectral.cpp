#include "graph/spectral.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace tb {
namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

void normalize(std::vector<double>& v) {
  const double norm = std::sqrt(dot(v, v));
  if (norm == 0.0) return;
  for (double& x : v) x /= norm;
}

}  // namespace

SpectralResult fiedler_vector(const Graph& g, int max_iter, double tol) {
  assert(g.finalized());
  const auto n = static_cast<std::size_t>(g.num_nodes());
  if (n < 2) throw std::invalid_argument("fiedler_vector: need >= 2 nodes");

  // Weighted degrees.
  std::vector<double> wdeg(n, 0.0);
  for (int a = 0; a < g.num_arcs(); ++a) {
    wdeg[static_cast<std::size_t>(g.arc_from(a))] += g.arc_cap(a);
  }
  for (const double d : wdeg) {
    if (d <= 0.0) {
      throw std::invalid_argument("fiedler_vector: isolated node");
    }
  }
  std::vector<double> inv_sqrt(n);
  for (std::size_t i = 0; i < n; ++i) inv_sqrt[i] = 1.0 / std::sqrt(wdeg[i]);

  // Known top eigenvector of M = 2I - L (eigenvalue 2): D^{1/2} * 1.
  std::vector<double> top(n);
  for (std::size_t i = 0; i < n; ++i) top[i] = std::sqrt(wdeg[i]);
  normalize(top);

  // Deterministic pseudo-random start, deflated against `top`.
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(static_cast<double>(i) * 1.61803398875 + 0.5);
  }
  const auto deflate = [&](std::vector<double>& x) {
    const double proj = dot(x, top);
    for (std::size_t i = 0; i < n; ++i) x[i] -= proj * top[i];
  };
  deflate(v);
  normalize(v);

  // y = M x where M = 2I - L = I + D^{-1/2} W D^{-1/2}.
  std::vector<double> y(n);
  const auto apply = [&](const std::vector<double>& x, std::vector<double>& out) {
    for (std::size_t i = 0; i < n; ++i) out[i] = x[i];
    for (int a = 0; a < g.num_arcs(); ++a) {
      const auto u = static_cast<std::size_t>(g.arc_from(a));
      const auto w = static_cast<std::size_t>(g.arc_to(a));
      out[u] += g.arc_cap(a) * inv_sqrt[u] * inv_sqrt[w] * x[w];
    }
  };

  SpectralResult result;
  double mu = 0.0;
  for (int it = 0; it < max_iter; ++it) {
    apply(v, y);
    deflate(y);
    const double new_mu = dot(v, y);  // Rayleigh quotient of M
    normalize(y);
    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      delta = std::max(delta, std::abs(std::abs(y[i]) - std::abs(v[i])));
    }
    v.swap(y);
    result.iterations = it + 1;
    if (std::abs(new_mu - mu) < tol && delta < 1e-8) {
      mu = new_mu;
      break;
    }
    mu = new_mu;
  }

  // Convert back: eigenvalue of L is 2 - mu; Fiedler coordinates are
  // D^{-1/2} v (the sweep in cuts/ sorts by this embedding).
  result.eigenvalue = 2.0 - mu;
  result.vector.resize(n);
  for (std::size_t i = 0; i < n; ++i) result.vector[i] = v[i] * inv_sqrt[i];
  return result;
}

double normalized_spectral_gap(const Graph& g) {
  return fiedler_vector(g).eigenvalue;
}

}  // namespace tb
