#include "graph/partition.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "util/rng.h"

namespace tb {

double cut_capacity(const Graph& g, const std::vector<std::uint8_t>& side) {
  double cut = 0.0;
  for (int e = 0; e < g.num_edges(); ++e) {
    if (side[static_cast<std::size_t>(g.edge_u(e))] !=
        side[static_cast<std::size_t>(g.edge_v(e))]) {
      cut += g.edge_cap(e);
    }
  }
  return cut;
}

namespace {

/// Gain of moving v to the other side: (internal cost) - (external cost).
double move_gain(const Graph& g, const std::vector<std::uint8_t>& side, int v) {
  double internal = 0.0;
  double external = 0.0;
  for (const int a : g.out_arcs(v)) {
    const int w = g.arc_to(a);
    if (side[static_cast<std::size_t>(w)] == side[static_cast<std::size_t>(v)]) {
      internal += g.arc_cap(a);
    } else {
      external += g.arc_cap(a);
    }
  }
  return external - internal;
}

}  // namespace

double kernighan_lin_refine(const Graph& g, std::vector<std::uint8_t>& side,
                            int max_passes) {
  assert(g.finalized());
  const int n = g.num_nodes();
  double best_cut = cut_capacity(g, side);

  for (int pass = 0; pass < max_passes; ++pass) {
    // One KL pass: greedily swap the best (a in 0-side, b in 1-side) pair,
    // lock both, repeat; then roll back to the best prefix of swaps.
    std::vector<std::uint8_t> locked(static_cast<std::size_t>(n), 0);
    std::vector<std::pair<int, int>> swaps;
    std::vector<double> cut_after;
    std::vector<std::uint8_t> work = side;
    double cut = best_cut;

    const int rounds = n / 2;
    for (int r = 0; r < rounds; ++r) {
      // Pick the best unlocked pair by combined gain. O(n^2) pair scan is
      // avoided by choosing best single nodes per side and correcting for
      // a possible shared edge.
      int best_a = -1;
      int best_b = -1;
      double best_gain = -std::numeric_limits<double>::infinity();
      // Collect top candidates per side.
      for (int a = 0; a < n; ++a) {
        if (locked[static_cast<std::size_t>(a)] ||
            work[static_cast<std::size_t>(a)] != 0) {
          continue;
        }
        const double ga = move_gain(g, work, a);
        for (int b = 0; b < n; ++b) {
          if (locked[static_cast<std::size_t>(b)] ||
              work[static_cast<std::size_t>(b)] != 1) {
            continue;
          }
          double w_ab = 0.0;
          for (const int arc : g.out_arcs(a)) {
            if (g.arc_to(arc) == b) w_ab += g.arc_cap(arc);
          }
          const double gain = ga + move_gain(g, work, b) - 2.0 * w_ab;
          if (gain > best_gain) {
            best_gain = gain;
            best_a = a;
            best_b = b;
          }
        }
      }
      if (best_a < 0) break;
      work[static_cast<std::size_t>(best_a)] = 1;
      work[static_cast<std::size_t>(best_b)] = 0;
      locked[static_cast<std::size_t>(best_a)] = 1;
      locked[static_cast<std::size_t>(best_b)] = 1;
      cut -= best_gain;
      swaps.emplace_back(best_a, best_b);
      cut_after.push_back(cut);
    }

    // Best prefix.
    int best_prefix = -1;
    double pass_best = best_cut;
    for (std::size_t i = 0; i < cut_after.size(); ++i) {
      if (cut_after[i] < pass_best - 1e-12) {
        pass_best = cut_after[i];
        best_prefix = static_cast<int>(i);
      }
    }
    if (best_prefix < 0) break;  // no improvement this pass
    for (int i = 0; i <= best_prefix; ++i) {
      side[static_cast<std::size_t>(swaps[static_cast<std::size_t>(i)].first)] = 1;
      side[static_cast<std::size_t>(swaps[static_cast<std::size_t>(i)].second)] = 0;
    }
    best_cut = pass_best;
  }
  return best_cut;
}

BipartitionResult min_bisection(const Graph& g, int restarts,
                                std::uint64_t seed) {
  assert(g.finalized());
  const int n = g.num_nodes();
  Rng rng(seed);
  BipartitionResult best;
  best.cut_capacity = std::numeric_limits<double>::infinity();

  for (int r = 0; r < restarts; ++r) {
    std::vector<int> perm = rng.permutation(n);
    std::vector<std::uint8_t> side(static_cast<std::size_t>(n), 0);
    for (int i = n / 2; i < n; ++i) {
      side[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] = 1;
    }
    const double cut = kernighan_lin_refine(g, side);
    if (cut < best.cut_capacity) {
      best.cut_capacity = cut;
      best.side = std::move(side);
    }
  }
  return best;
}

}  // namespace tb
