#include "graph/algorithms.h"

#include <cassert>
#include <queue>

namespace tb {

std::vector<int> bfs_distances(const Graph& g, int src) {
  assert(g.finalized());
  std::vector<int> dist(static_cast<std::size_t>(g.num_nodes()), kUnreachable);
  std::vector<int> frontier;
  frontier.push_back(src);
  dist[static_cast<std::size_t>(src)] = 0;
  std::vector<int> next;
  int level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (const int u : frontier) {
      for (const int a : g.out_arcs(u)) {
        const int v = g.arc_to(a);
        if (dist[static_cast<std::size_t>(v)] == kUnreachable) {
          dist[static_cast<std::size_t>(v)] = level;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

std::vector<int> all_pairs_distances(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::vector<int> all(n * n);
  for (int s = 0; s < g.num_nodes(); ++s) {
    const std::vector<int> d = bfs_distances(g, s);
    std::copy(d.begin(), d.end(), all.begin() + static_cast<std::ptrdiff_t>(
                                                    static_cast<std::size_t>(s) * n));
  }
  return all;
}

void dijkstra(const Graph& g, int src, std::span<const double> len,
              std::vector<double>& dist, std::vector<int>& parent_arc) {
  assert(g.finalized());
  assert(static_cast<int>(len.size()) == g.num_arcs());
  const auto n = static_cast<std::size_t>(g.num_nodes());
  dist.assign(n, std::numeric_limits<double>::infinity());
  parent_arc.assign(n, -1);
  using Entry = std::pair<double, int>;  // (distance, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[static_cast<std::size_t>(src)] = 0.0;
  heap.emplace(0.0, src);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;  // stale entry
    for (const int a : g.out_arcs(u)) {
      const int v = g.arc_to(a);
      const double nd = d + len[static_cast<std::size_t>(a)];
      if (nd < dist[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] = nd;
        parent_arc[static_cast<std::size_t>(v)] = a;
        heap.emplace(nd, v);
      }
    }
  }
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() == 0) return true;
  const std::vector<int> d = bfs_distances(g, 0);
  for (const int x : d) {
    if (x == kUnreachable) return false;
  }
  return true;
}

int diameter(const Graph& g) {
  int diam = 0;
  for (int s = 0; s < g.num_nodes(); ++s) {
    const std::vector<int> d = bfs_distances(g, s);
    for (const int x : d) {
      if (x == kUnreachable) return kUnreachable;
      diam = std::max(diam, x);
    }
  }
  return diam;
}

double average_shortest_path_length(const Graph& g) {
  const int n = g.num_nodes();
  if (n < 2) return 0.0;
  double sum = 0.0;
  std::size_t pairs = 0;
  for (int s = 0; s < n; ++s) {
    const std::vector<int> d = bfs_distances(g, s);
    for (int t = 0; t < n; ++t) {
      if (t == s) continue;
      assert(d[static_cast<std::size_t>(t)] != kUnreachable);
      sum += d[static_cast<std::size_t>(t)];
      ++pairs;
    }
  }
  return sum / static_cast<double>(pairs);
}

std::vector<int> connected_components(const Graph& g, int* num_components) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::vector<int> comp(n, -1);
  int count = 0;
  std::vector<int> stack;
  for (int s = 0; s < g.num_nodes(); ++s) {
    if (comp[static_cast<std::size_t>(s)] != -1) continue;
    comp[static_cast<std::size_t>(s)] = count;
    stack.push_back(s);
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      for (const int a : g.out_arcs(u)) {
        const int v = g.arc_to(a);
        if (comp[static_cast<std::size_t>(v)] == -1) {
          comp[static_cast<std::size_t>(v)] = count;
          stack.push_back(v);
        }
      }
    }
    ++count;
  }
  if (num_components != nullptr) *num_components = count;
  return comp;
}

}  // namespace tb
