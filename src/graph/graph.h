// Capacitated undirected graph with a CSR arc representation.
//
// Model (paper §II-A): switches are graph nodes; each undirected edge (u,v)
// of capacity c contributes two directed arcs u->v and v->u, each with its
// own capacity c ("uni-directional links"). Flow solvers operate on arcs;
// topology generators and cut heuristics operate on edges.
//
// Arcs are numbered so that edge e yields arcs 2e (u->v) and 2e+1 (v->u);
// `arc ^ 1` is therefore always the reverse arc.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace tb {

class Graph {
 public:
  Graph() = default;
  /// Graph with `n` nodes and no edges.
  explicit Graph(int n) : num_nodes_(n) {}

  /// Append a new node, returning its id.
  int add_node() { return num_nodes_++; }

  /// Add an undirected edge u-v with capacity `cap` in each direction.
  /// Self loops are rejected; parallel edges are allowed (multigraph).
  /// Returns the edge id. Invalidates the CSR until finalize().
  int add_edge(int u, int v, double cap = 1.0);

  /// Build the CSR adjacency. Must be called after the last mutation and
  /// before any adjacency query. Idempotent.
  void finalize();

  bool finalized() const noexcept { return finalized_; }

  int num_nodes() const noexcept { return num_nodes_; }
  int num_edges() const noexcept { return static_cast<int>(edge_u_.size()); }
  int num_arcs() const noexcept { return 2 * num_edges(); }

  int edge_u(int e) const { return edge_u_[static_cast<std::size_t>(e)]; }
  int edge_v(int e) const { return edge_v_[static_cast<std::size_t>(e)]; }
  double edge_cap(int e) const { return cap_[static_cast<std::size_t>(e)]; }
  void set_edge_cap(int e, double cap) {
    cap_[static_cast<std::size_t>(e)] = cap;
  }

  /// Arc endpoints: arc 2e runs edge_u(e) -> edge_v(e); arc 2e+1 the reverse.
  int arc_from(int a) const { return (a & 1) ? edge_v(a >> 1) : edge_u(a >> 1); }
  int arc_to(int a) const { return (a & 1) ? edge_u(a >> 1) : edge_v(a >> 1); }
  double arc_cap(int a) const { return cap_[static_cast<std::size_t>(a >> 1)]; }
  static int reverse_arc(int a) noexcept { return a ^ 1; }

  /// Outgoing arc ids of node v (requires finalize()).
  std::span<const int> out_arcs(int v) const {
    const auto b = static_cast<std::size_t>(offset_[static_cast<std::size_t>(v)]);
    const auto e = static_cast<std::size_t>(offset_[static_cast<std::size_t>(v) + 1]);
    return {adj_.data() + b, e - b};
  }

  /// Degree counting parallel edges (requires finalize()).
  int degree(int v) const {
    return offset_[static_cast<std::size_t>(v) + 1] -
           offset_[static_cast<std::size_t>(v)];
  }

  /// Sum of all arc capacities (== 2 * sum of edge capacities).
  double total_capacity() const;

  /// Degree of every node (requires finalize()).
  std::vector<int> degree_sequence() const;

  /// True if some edge u-v (either orientation) exists. O(deg(u)).
  bool has_edge(int u, int v) const;

  /// List of (u, v) pairs for all edges, u/v in stored order.
  std::vector<std::pair<int, int>> edge_list() const;

 private:
  int num_nodes_ = 0;
  std::vector<int> edge_u_;
  std::vector<int> edge_v_;
  std::vector<double> cap_;
  // CSR: adj_ holds arc ids grouped by source node.
  std::vector<int> offset_;
  std::vector<int> adj_;
  bool finalized_ = false;
};

}  // namespace tb
