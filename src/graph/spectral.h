// Spectral tools: the eigenvector of the second-smallest eigenvalue of the
// normalized Laplacian (the Fiedler direction). Paper Appendix C uses a
// sweep over this vector as the most successful sparse-cut estimator (it
// found 499 of 581 sparse cuts); Long Hop generator selection also maximizes
// the spectral gap through this module.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace tb {

struct SpectralResult {
  std::vector<double> vector;  ///< second eigenvector of the normalized Laplacian
  double eigenvalue = 0.0;     ///< its eigenvalue (lambda_2), in [0, 2]
  int iterations = 0;          ///< power-iteration steps performed
};

/// Compute (lambda_2, v_2) of the capacity-weighted normalized Laplacian
/// L = I - D^{-1/2} W D^{-1/2} by power iteration on 2I - L with deflation
/// against the known top eigenvector D^{1/2} * 1. The graph must be
/// connected and have no isolated nodes.
SpectralResult fiedler_vector(const Graph& g, int max_iter = 3000,
                              double tol = 1e-10);

/// Spectral gap proxy: lambda_2 of the normalized Laplacian. Larger means
/// better expansion.
double normalized_spectral_gap(const Graph& g);

}  // namespace tb
