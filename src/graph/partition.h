// Kernighan-Lin balanced bipartitioning, used by the bisection-bandwidth
// estimator: the paper defines bisection bandwidth as the capacity of the
// worst cut dividing the network into two equal halves, which is NP-hard,
// so beyond brute-force sizes we minimize the cut with KL refinement over
// several random starts.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace tb {

struct BipartitionResult {
  std::vector<std::uint8_t> side;  ///< 0/1 per node, sides sized n/2 (±1)
  double cut_capacity = 0.0;       ///< total capacity of edges crossing
};

/// One KL refinement pass from the given starting assignment (modified in
/// place); returns the final cut capacity.
double kernighan_lin_refine(const Graph& g, std::vector<std::uint8_t>& side,
                            int max_passes = 16);

/// Best balanced bipartition over `restarts` random starts + KL refinement.
BipartitionResult min_bisection(const Graph& g, int restarts = 8,
                                std::uint64_t seed = 1);

/// Capacity crossing the given 0/1 node assignment.
double cut_capacity(const Graph& g, const std::vector<std::uint8_t>& side);

}  // namespace tb
