// Classic graph algorithms used throughout: BFS / Dijkstra shortest paths,
// all-pairs distances, connectivity, diameter, and average path length
// (the Slim Fly path-length study of Fig 9 and the volumetric throughput
// bound both consume these).
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace tb {

constexpr int kUnreachable = std::numeric_limits<int>::max();

/// Hop distances from `src` to every node (kUnreachable if disconnected).
std::vector<int> bfs_distances(const Graph& g, int src);

/// All-pairs hop distance matrix, row-major n x n. O(n * (n + m)).
std::vector<int> all_pairs_distances(const Graph& g);

/// Convenience accessor into an all_pairs_distances() result.
inline int apd_at(std::span<const int> d, int n, int u, int v) {
  return d[static_cast<std::size_t>(u) * static_cast<std::size_t>(n) +
           static_cast<std::size_t>(v)];
}

/// Dijkstra over arc lengths `len` (indexed by arc id, length >= 0).
/// Writes distances to `dist` and the incoming arc of each node's shortest
/// path tree to `parent_arc` (-1 for src / unreachable). Buffers are resized.
void dijkstra(const Graph& g, int src, std::span<const double> len,
              std::vector<double>& dist, std::vector<int>& parent_arc);

/// True if all nodes are reachable from node 0 (empty graph is connected).
bool is_connected(const Graph& g);

/// Longest shortest-path hop count; kUnreachable if disconnected.
int diameter(const Graph& g);

/// Mean hop distance over all ordered pairs of distinct nodes.
double average_shortest_path_length(const Graph& g);

/// Connected component id per node, components numbered from 0.
std::vector<int> connected_components(const Graph& g, int* num_components);

}  // namespace tb
